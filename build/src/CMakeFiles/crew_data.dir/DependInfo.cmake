
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crew/data/benchmark_suite.cc" "src/CMakeFiles/crew_data.dir/crew/data/benchmark_suite.cc.o" "gcc" "src/CMakeFiles/crew_data.dir/crew/data/benchmark_suite.cc.o.d"
  "/root/repo/src/crew/data/blocking.cc" "src/CMakeFiles/crew_data.dir/crew/data/blocking.cc.o" "gcc" "src/CMakeFiles/crew_data.dir/crew/data/blocking.cc.o.d"
  "/root/repo/src/crew/data/csv.cc" "src/CMakeFiles/crew_data.dir/crew/data/csv.cc.o" "gcc" "src/CMakeFiles/crew_data.dir/crew/data/csv.cc.o.d"
  "/root/repo/src/crew/data/dataset.cc" "src/CMakeFiles/crew_data.dir/crew/data/dataset.cc.o" "gcc" "src/CMakeFiles/crew_data.dir/crew/data/dataset.cc.o.d"
  "/root/repo/src/crew/data/generator.cc" "src/CMakeFiles/crew_data.dir/crew/data/generator.cc.o" "gcc" "src/CMakeFiles/crew_data.dir/crew/data/generator.cc.o.d"
  "/root/repo/src/crew/data/magellan.cc" "src/CMakeFiles/crew_data.dir/crew/data/magellan.cc.o" "gcc" "src/CMakeFiles/crew_data.dir/crew/data/magellan.cc.o.d"
  "/root/repo/src/crew/data/noise.cc" "src/CMakeFiles/crew_data.dir/crew/data/noise.cc.o" "gcc" "src/CMakeFiles/crew_data.dir/crew/data/noise.cc.o.d"
  "/root/repo/src/crew/data/record.cc" "src/CMakeFiles/crew_data.dir/crew/data/record.cc.o" "gcc" "src/CMakeFiles/crew_data.dir/crew/data/record.cc.o.d"
  "/root/repo/src/crew/data/schema.cc" "src/CMakeFiles/crew_data.dir/crew/data/schema.cc.o" "gcc" "src/CMakeFiles/crew_data.dir/crew/data/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crew_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
