file(REMOVE_RECURSE
  "CMakeFiles/crew_data.dir/crew/data/benchmark_suite.cc.o"
  "CMakeFiles/crew_data.dir/crew/data/benchmark_suite.cc.o.d"
  "CMakeFiles/crew_data.dir/crew/data/blocking.cc.o"
  "CMakeFiles/crew_data.dir/crew/data/blocking.cc.o.d"
  "CMakeFiles/crew_data.dir/crew/data/csv.cc.o"
  "CMakeFiles/crew_data.dir/crew/data/csv.cc.o.d"
  "CMakeFiles/crew_data.dir/crew/data/dataset.cc.o"
  "CMakeFiles/crew_data.dir/crew/data/dataset.cc.o.d"
  "CMakeFiles/crew_data.dir/crew/data/generator.cc.o"
  "CMakeFiles/crew_data.dir/crew/data/generator.cc.o.d"
  "CMakeFiles/crew_data.dir/crew/data/magellan.cc.o"
  "CMakeFiles/crew_data.dir/crew/data/magellan.cc.o.d"
  "CMakeFiles/crew_data.dir/crew/data/noise.cc.o"
  "CMakeFiles/crew_data.dir/crew/data/noise.cc.o.d"
  "CMakeFiles/crew_data.dir/crew/data/record.cc.o"
  "CMakeFiles/crew_data.dir/crew/data/record.cc.o.d"
  "CMakeFiles/crew_data.dir/crew/data/schema.cc.o"
  "CMakeFiles/crew_data.dir/crew/data/schema.cc.o.d"
  "libcrew_data.a"
  "libcrew_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
