# Empty dependencies file for crew_data.
# This may be replaced when dependencies are built.
