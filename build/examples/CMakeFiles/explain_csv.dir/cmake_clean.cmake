file(REMOVE_RECURSE
  "CMakeFiles/explain_csv.dir/explain_csv.cpp.o"
  "CMakeFiles/explain_csv.dir/explain_csv.cpp.o.d"
  "explain_csv"
  "explain_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
