# Empty dependencies file for explain_csv.
# This may be replaced when dependencies are built.
