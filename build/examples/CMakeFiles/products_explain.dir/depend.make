# Empty dependencies file for products_explain.
# This may be replaced when dependencies are built.
