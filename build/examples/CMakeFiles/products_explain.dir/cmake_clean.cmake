file(REMOVE_RECURSE
  "CMakeFiles/products_explain.dir/products_explain.cpp.o"
  "CMakeFiles/products_explain.dir/products_explain.cpp.o.d"
  "products_explain"
  "products_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/products_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
