file(REMOVE_RECURSE
  "CMakeFiles/bibliographic_explain.dir/bibliographic_explain.cpp.o"
  "CMakeFiles/bibliographic_explain.dir/bibliographic_explain.cpp.o.d"
  "bibliographic_explain"
  "bibliographic_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibliographic_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
