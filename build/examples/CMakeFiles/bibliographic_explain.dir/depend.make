# Empty dependencies file for bibliographic_explain.
# This may be replaced when dependencies are built.
