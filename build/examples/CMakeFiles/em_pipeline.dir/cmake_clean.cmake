file(REMOVE_RECURSE
  "CMakeFiles/em_pipeline.dir/em_pipeline.cpp.o"
  "CMakeFiles/em_pipeline.dir/em_pipeline.cpp.o.d"
  "em_pipeline"
  "em_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
