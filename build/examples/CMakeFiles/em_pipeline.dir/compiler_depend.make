# Empty compiler generated dependencies file for em_pipeline.
# This may be replaced when dependencies are built.
