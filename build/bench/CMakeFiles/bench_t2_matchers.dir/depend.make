# Empty dependencies file for bench_t2_matchers.
# This may be replaced when dependencies are built.
