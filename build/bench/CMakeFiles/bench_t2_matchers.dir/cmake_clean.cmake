file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_matchers.dir/bench_t2_matchers.cc.o"
  "CMakeFiles/bench_t2_matchers.dir/bench_t2_matchers.cc.o.d"
  "bench_t2_matchers"
  "bench_t2_matchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_matchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
