file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_faithfulness.dir/bench_t3_faithfulness.cc.o"
  "CMakeFiles/bench_t3_faithfulness.dir/bench_t3_faithfulness.cc.o.d"
  "bench_t3_faithfulness"
  "bench_t3_faithfulness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_faithfulness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
