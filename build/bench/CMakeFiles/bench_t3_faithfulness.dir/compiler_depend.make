# Empty compiler generated dependencies file for bench_t3_faithfulness.
# This may be replaced when dependencies are built.
