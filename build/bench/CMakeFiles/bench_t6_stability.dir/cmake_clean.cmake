file(REMOVE_RECURSE
  "CMakeFiles/bench_t6_stability.dir/bench_t6_stability.cc.o"
  "CMakeFiles/bench_t6_stability.dir/bench_t6_stability.cc.o.d"
  "bench_t6_stability"
  "bench_t6_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
