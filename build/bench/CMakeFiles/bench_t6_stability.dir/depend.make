# Empty dependencies file for bench_t6_stability.
# This may be replaced when dependencies are built.
