# Empty compiler generated dependencies file for bench_f2_k_sensitivity.
# This may be replaced when dependencies are built.
