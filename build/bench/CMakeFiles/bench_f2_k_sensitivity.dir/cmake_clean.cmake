file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_k_sensitivity.dir/bench_f2_k_sensitivity.cc.o"
  "CMakeFiles/bench_f2_k_sensitivity.dir/bench_f2_k_sensitivity.cc.o.d"
  "bench_f2_k_sensitivity"
  "bench_f2_k_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_k_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
