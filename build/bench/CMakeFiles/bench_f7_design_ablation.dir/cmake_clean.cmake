file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_design_ablation.dir/bench_f7_design_ablation.cc.o"
  "CMakeFiles/bench_f7_design_ablation.dir/bench_f7_design_ablation.cc.o.d"
  "bench_f7_design_ablation"
  "bench_f7_design_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_design_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
