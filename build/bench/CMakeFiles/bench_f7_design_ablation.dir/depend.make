# Empty dependencies file for bench_f7_design_ablation.
# This may be replaced when dependencies are built.
