file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_flipset.dir/bench_f6_flipset.cc.o"
  "CMakeFiles/bench_f6_flipset.dir/bench_f6_flipset.cc.o.d"
  "bench_f6_flipset"
  "bench_f6_flipset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_flipset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
