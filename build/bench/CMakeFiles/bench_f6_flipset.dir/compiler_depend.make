# Empty compiler generated dependencies file for bench_f6_flipset.
# This may be replaced when dependencies are built.
