file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_ablation.dir/bench_f3_ablation.cc.o"
  "CMakeFiles/bench_f3_ablation.dir/bench_f3_ablation.cc.o.d"
  "bench_f3_ablation"
  "bench_f3_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
