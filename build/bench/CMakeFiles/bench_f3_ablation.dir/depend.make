# Empty dependencies file for bench_f3_ablation.
# This may be replaced when dependencies are built.
