file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_suff_compr.dir/bench_t4_suff_compr.cc.o"
  "CMakeFiles/bench_t4_suff_compr.dir/bench_t4_suff_compr.cc.o.d"
  "bench_t4_suff_compr"
  "bench_t4_suff_compr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_suff_compr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
