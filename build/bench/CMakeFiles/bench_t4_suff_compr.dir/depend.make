# Empty dependencies file for bench_t4_suff_compr.
# This may be replaced when dependencies are built.
