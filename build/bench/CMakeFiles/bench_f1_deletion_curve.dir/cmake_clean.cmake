file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_deletion_curve.dir/bench_f1_deletion_curve.cc.o"
  "CMakeFiles/bench_f1_deletion_curve.dir/bench_f1_deletion_curve.cc.o.d"
  "bench_f1_deletion_curve"
  "bench_f1_deletion_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_deletion_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
