# Empty compiler generated dependencies file for bench_f4_runtime.
# This may be replaced when dependencies are built.
