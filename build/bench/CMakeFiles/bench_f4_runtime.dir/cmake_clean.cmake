file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_runtime.dir/bench_f4_runtime.cc.o"
  "CMakeFiles/bench_f4_runtime.dir/bench_f4_runtime.cc.o.d"
  "bench_f4_runtime"
  "bench_f4_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
