file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_comprehensibility.dir/bench_t5_comprehensibility.cc.o"
  "CMakeFiles/bench_t5_comprehensibility.dir/bench_t5_comprehensibility.cc.o.d"
  "bench_t5_comprehensibility"
  "bench_t5_comprehensibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_comprehensibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
