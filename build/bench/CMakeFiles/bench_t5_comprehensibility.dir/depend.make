# Empty dependencies file for bench_t5_comprehensibility.
# This may be replaced when dependencies are built.
