file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_match_vs_nonmatch.dir/bench_f5_match_vs_nonmatch.cc.o"
  "CMakeFiles/bench_f5_match_vs_nonmatch.dir/bench_f5_match_vs_nonmatch.cc.o.d"
  "bench_f5_match_vs_nonmatch"
  "bench_f5_match_vs_nonmatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_match_vs_nonmatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
