# Empty dependencies file for bench_f5_match_vs_nonmatch.
# This may be replaced when dependencies are built.
