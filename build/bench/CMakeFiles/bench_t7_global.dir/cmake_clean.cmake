file(REMOVE_RECURSE
  "CMakeFiles/bench_t7_global.dir/bench_t7_global.cc.o"
  "CMakeFiles/bench_t7_global.dir/bench_t7_global.cc.o.d"
  "bench_t7_global"
  "bench_t7_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t7_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
