# Empty dependencies file for bench_t7_global.
# This may be replaced when dependencies are built.
