file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_datasets.dir/bench_t1_datasets.cc.o"
  "CMakeFiles/bench_t1_datasets.dir/bench_t1_datasets.cc.o.d"
  "bench_t1_datasets"
  "bench_t1_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
