# Empty dependencies file for bench_t1_datasets.
# This may be replaced when dependencies are built.
