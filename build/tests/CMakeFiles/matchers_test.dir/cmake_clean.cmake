file(REMOVE_RECURSE
  "CMakeFiles/matchers_test.dir/matchers_test.cc.o"
  "CMakeFiles/matchers_test.dir/matchers_test.cc.o.d"
  "matchers_test"
  "matchers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matchers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
