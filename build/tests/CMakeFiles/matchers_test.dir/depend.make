# Empty dependencies file for matchers_test.
# This may be replaced when dependencies are built.
