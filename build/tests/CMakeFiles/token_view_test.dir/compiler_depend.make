# Empty compiler generated dependencies file for token_view_test.
# This may be replaced when dependencies are built.
