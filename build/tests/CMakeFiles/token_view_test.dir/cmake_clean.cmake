file(REMOVE_RECURSE
  "CMakeFiles/token_view_test.dir/token_view_test.cc.o"
  "CMakeFiles/token_view_test.dir/token_view_test.cc.o.d"
  "token_view_test"
  "token_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
