# Empty compiler generated dependencies file for html_report_test.
# This may be replaced when dependencies are built.
