file(REMOVE_RECURSE
  "CMakeFiles/html_report_test.dir/html_report_test.cc.o"
  "CMakeFiles/html_report_test.dir/html_report_test.cc.o.d"
  "html_report_test"
  "html_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
