# Empty dependencies file for rule_matcher_test.
# This may be replaced when dependencies are built.
