file(REMOVE_RECURSE
  "CMakeFiles/rule_matcher_test.dir/rule_matcher_test.cc.o"
  "CMakeFiles/rule_matcher_test.dir/rule_matcher_test.cc.o.d"
  "rule_matcher_test"
  "rule_matcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
