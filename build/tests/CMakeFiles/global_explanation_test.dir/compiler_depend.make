# Empty compiler generated dependencies file for global_explanation_test.
# This may be replaced when dependencies are built.
