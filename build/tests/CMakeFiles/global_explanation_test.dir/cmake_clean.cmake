file(REMOVE_RECURSE
  "CMakeFiles/global_explanation_test.dir/global_explanation_test.cc.o"
  "CMakeFiles/global_explanation_test.dir/global_explanation_test.cc.o.d"
  "global_explanation_test"
  "global_explanation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_explanation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
