# Empty compiler generated dependencies file for affinity_test.
# This may be replaced when dependencies are built.
