file(REMOVE_RECURSE
  "CMakeFiles/affinity_test.dir/affinity_test.cc.o"
  "CMakeFiles/affinity_test.dir/affinity_test.cc.o.d"
  "affinity_test"
  "affinity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affinity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
