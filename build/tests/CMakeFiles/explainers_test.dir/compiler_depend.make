# Empty compiler generated dependencies file for explainers_test.
# This may be replaced when dependencies are built.
