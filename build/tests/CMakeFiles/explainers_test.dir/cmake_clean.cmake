file(REMOVE_RECURSE
  "CMakeFiles/explainers_test.dir/explainers_test.cc.o"
  "CMakeFiles/explainers_test.dir/explainers_test.cc.o.d"
  "explainers_test"
  "explainers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explainers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
