# Empty dependencies file for magellan_test.
# This may be replaced when dependencies are built.
