file(REMOVE_RECURSE
  "CMakeFiles/magellan_test.dir/magellan_test.cc.o"
  "CMakeFiles/magellan_test.dir/magellan_test.cc.o.d"
  "magellan_test"
  "magellan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magellan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
