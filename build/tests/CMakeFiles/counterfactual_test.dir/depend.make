# Empty dependencies file for counterfactual_test.
# This may be replaced when dependencies are built.
