
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/counterfactual_test.cc" "tests/CMakeFiles/counterfactual_test.dir/counterfactual_test.cc.o" "gcc" "tests/CMakeFiles/counterfactual_test.dir/counterfactual_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crew_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
