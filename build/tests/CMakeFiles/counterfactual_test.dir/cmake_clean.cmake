file(REMOVE_RECURSE
  "CMakeFiles/counterfactual_test.dir/counterfactual_test.cc.o"
  "CMakeFiles/counterfactual_test.dir/counterfactual_test.cc.o.d"
  "counterfactual_test"
  "counterfactual_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counterfactual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
