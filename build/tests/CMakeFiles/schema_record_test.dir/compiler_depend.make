# Empty compiler generated dependencies file for schema_record_test.
# This may be replaced when dependencies are built.
