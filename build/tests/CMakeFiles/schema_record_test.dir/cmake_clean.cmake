file(REMOVE_RECURSE
  "CMakeFiles/schema_record_test.dir/schema_record_test.cc.o"
  "CMakeFiles/schema_record_test.dir/schema_record_test.cc.o.d"
  "schema_record_test"
  "schema_record_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
