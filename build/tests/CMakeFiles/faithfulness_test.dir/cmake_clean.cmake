file(REMOVE_RECURSE
  "CMakeFiles/faithfulness_test.dir/faithfulness_test.cc.o"
  "CMakeFiles/faithfulness_test.dir/faithfulness_test.cc.o.d"
  "faithfulness_test"
  "faithfulness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faithfulness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
