# Empty compiler generated dependencies file for faithfulness_test.
# This may be replaced when dependencies are built.
