# Empty compiler generated dependencies file for rule_recovery_test.
# This may be replaced when dependencies are built.
