file(REMOVE_RECURSE
  "CMakeFiles/rule_recovery_test.dir/rule_recovery_test.cc.o"
  "CMakeFiles/rule_recovery_test.dir/rule_recovery_test.cc.o.d"
  "rule_recovery_test"
  "rule_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
