file(REMOVE_RECURSE
  "CMakeFiles/ridge_test.dir/ridge_test.cc.o"
  "CMakeFiles/ridge_test.dir/ridge_test.cc.o.d"
  "ridge_test"
  "ridge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ridge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
