# Empty dependencies file for ridge_test.
# This may be replaced when dependencies are built.
