file(REMOVE_RECURSE
  "CMakeFiles/decision_units_test.dir/decision_units_test.cc.o"
  "CMakeFiles/decision_units_test.dir/decision_units_test.cc.o.d"
  "decision_units_test"
  "decision_units_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decision_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
