# Empty compiler generated dependencies file for decision_units_test.
# This may be replaced when dependencies are built.
