file(REMOVE_RECURSE
  "CMakeFiles/vector_ops_test.dir/vector_ops_test.cc.o"
  "CMakeFiles/vector_ops_test.dir/vector_ops_test.cc.o.d"
  "vector_ops_test"
  "vector_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
