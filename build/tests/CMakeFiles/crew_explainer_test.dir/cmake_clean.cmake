file(REMOVE_RECURSE
  "CMakeFiles/crew_explainer_test.dir/crew_explainer_test.cc.o"
  "CMakeFiles/crew_explainer_test.dir/crew_explainer_test.cc.o.d"
  "crew_explainer_test"
  "crew_explainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_explainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
