# Empty dependencies file for crew_explainer_test.
# This may be replaced when dependencies are built.
