file(REMOVE_RECURSE
  "CMakeFiles/agglomerative_test.dir/agglomerative_test.cc.o"
  "CMakeFiles/agglomerative_test.dir/agglomerative_test.cc.o.d"
  "agglomerative_test"
  "agglomerative_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agglomerative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
