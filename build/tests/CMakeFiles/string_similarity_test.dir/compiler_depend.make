# Empty compiler generated dependencies file for string_similarity_test.
# This may be replaced when dependencies are built.
