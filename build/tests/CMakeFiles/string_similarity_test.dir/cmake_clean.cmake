file(REMOVE_RECURSE
  "CMakeFiles/string_similarity_test.dir/string_similarity_test.cc.o"
  "CMakeFiles/string_similarity_test.dir/string_similarity_test.cc.o.d"
  "string_similarity_test"
  "string_similarity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
