# Empty dependencies file for comprehensibility_test.
# This may be replaced when dependencies are built.
