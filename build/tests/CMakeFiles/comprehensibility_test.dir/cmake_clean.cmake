file(REMOVE_RECURSE
  "CMakeFiles/comprehensibility_test.dir/comprehensibility_test.cc.o"
  "CMakeFiles/comprehensibility_test.dir/comprehensibility_test.cc.o.d"
  "comprehensibility_test"
  "comprehensibility_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comprehensibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
