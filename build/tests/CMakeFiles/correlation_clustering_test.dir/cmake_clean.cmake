file(REMOVE_RECURSE
  "CMakeFiles/correlation_clustering_test.dir/correlation_clustering_test.cc.o"
  "CMakeFiles/correlation_clustering_test.dir/correlation_clustering_test.cc.o.d"
  "correlation_clustering_test"
  "correlation_clustering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlation_clustering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
