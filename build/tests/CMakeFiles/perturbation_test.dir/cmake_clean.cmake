file(REMOVE_RECURSE
  "CMakeFiles/perturbation_test.dir/perturbation_test.cc.o"
  "CMakeFiles/perturbation_test.dir/perturbation_test.cc.o.d"
  "perturbation_test"
  "perturbation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perturbation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
