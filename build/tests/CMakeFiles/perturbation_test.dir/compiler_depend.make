# Empty compiler generated dependencies file for perturbation_test.
# This may be replaced when dependencies are built.
