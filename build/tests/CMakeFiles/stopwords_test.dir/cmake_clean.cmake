file(REMOVE_RECURSE
  "CMakeFiles/stopwords_test.dir/stopwords_test.cc.o"
  "CMakeFiles/stopwords_test.dir/stopwords_test.cc.o.d"
  "stopwords_test"
  "stopwords_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stopwords_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
