# Empty compiler generated dependencies file for stopwords_test.
# This may be replaced when dependencies are built.
