file(REMOVE_RECURSE
  "CMakeFiles/embedding_io_test.dir/embedding_io_test.cc.o"
  "CMakeFiles/embedding_io_test.dir/embedding_io_test.cc.o.d"
  "embedding_io_test"
  "embedding_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
