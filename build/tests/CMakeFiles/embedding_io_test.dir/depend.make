# Empty dependencies file for embedding_io_test.
# This may be replaced when dependencies are built.
